package mis

import (
	"time"

	"repro/internal/decomp"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/trace"
)

// Order controls which side a two-phase decomposition algorithm solves
// first. The paper's heuristic (OrderAuto) picks the sparser side; the
// forced orders exist for the ablation experiments.
type Order int

const (
	// OrderAuto applies the paper's average-degree heuristic.
	OrderAuto Order = iota
	// OrderPartsFirst always solves the decomposed parts side first.
	OrderPartsFirst
	// OrderCrossFirst always solves the bridge/cross side first.
	OrderCrossFirst
)

// pickFirst resolves an Order against the heuristic's verdict.
func pickFirst(ord Order, partsSparser bool) bool {
	switch ord {
	case OrderPartsFirst:
		return true
	case OrderCrossFirst:
		return false
	default:
		return partsSparser
	}
}

// avgDeg is the order heuristic's sparsity measure.
func avgDeg(edges int64, verts int64) float64 {
	if verts == 0 {
		return 0
	}
	return 2 * float64(edges) / float64(verts)
}

// maskedPhase runs solver on the subgraph of g induced by the member
// vertices, through the status mask: members start undecided, everyone
// else is temporarily out. The solver sees exactly the induced subgraph.
func maskedPhase(g *graph.Graph, set *IndepSet, member []bool, solver Solver) Stats {
	n := g.NumVertices()
	status := make([]State, n)
	nc := par.NumChunks(n)
	bufs := make([][]int32, nc)
	par.RangeIdx(n, func(w, lo, hi int) {
		var out []int32
		for i := lo; i < hi; i++ {
			if member[i] {
				out = append(out, int32(i))
			} else {
				status[i] = StateOut
			}
		}
		bufs[w] = out
	})
	var active []int32
	for _, b := range bufs {
		active = append(active, b...)
	}
	return solver(g, status, set, active)
}

// remainderPhase reduces G by the current set (the pseudocode's "remove
// vertices that are in I or have a neighbor in I"), then runs solver on
// what remains. Works purely on a fresh status mask.
func remainderPhase(g *graph.Graph, set *IndepSet, solver Solver) Stats {
	n := g.NumVertices()
	status := make([]State, n)
	par.For(n, func(i int) {
		if set.In[i] {
			status[i] = StateIn
			return
		}
		for _, w := range g.Neighbors(int32(i)) {
			if set.In[w] {
				status[i] = StateOut
				return
			}
		}
	})
	active := make([]int32, 0, n)
	nc := par.NumChunks(n)
	bufs := make([][]int32, nc)
	par.RangeIdx(n, func(w, lo, hi int) {
		var out []int32
		for i := lo; i < hi; i++ {
			if status[i] == StateUndecided {
				out = append(out, int32(i))
			}
		}
		bufs[w] = out
	})
	for _, b := range bufs {
		active = append(active, b...)
	}
	return solver(g, status, set, active)
}

// MISBridge is the paper's Algorithm 10: find the bridges, compute an MIS
// on ∪ᵢ Hᵢ (the 2-edge-connected components minus bridge endpoints) and on
// the reduced remainder. The order heuristic from §V-B1 computes the
// sparser of ∪ᵢ Hᵢ and the bridge graph G_B first.
func MISBridge(g *graph.Graph, solver Solver) (*IndepSet, Report) {
	return MISBridgeOrdered(g, solver, OrderAuto)
}

// MISBridgeOrdered is MISBridge with an explicit phase order (ablation).
func MISBridgeOrdered(g *graph.Graph, solver Solver, ord Order) (*IndepSet, Report) {
	rep := Report{Strategy: "MIS-Bridge"}
	dsp := trace.Begin("decomp")
	bi := decomp.FindBridges(g)
	dsp.End()
	rep.Decomp = bi.Elapsed

	start := time.Now()
	n := g.NumVertices()
	set := NewIndepSet(n)

	isBridgeVtx := make([]bool, n)
	for _, e := range bi.Bridges {
		isBridgeVtx[e.U] = true
		isBridgeVtx[e.V] = true
	}
	// Sparsity of the two sides: H = G minus bridge endpoints (count its
	// edges in one parallel pass), G_B = the bridges.
	bridgeVerts := par.Count(n, func(i int) bool { return isBridgeVtx[i] })
	hEdges := par.Sum(n, func(i int) int64 {
		if isBridgeVtx[i] {
			return 0
		}
		var c int64
		for _, w := range g.Neighbors(int32(i)) {
			if !isBridgeVtx[w] {
				c++
			}
		}
		return c
	}) / 2
	rep.SparserFirst = pickFirst(ord,
		avgDeg(hEdges, int64(n)-bridgeVerts) <= avgDeg(int64(len(bi.Bridges)), bridgeVerts))

	member := make([]bool, n)
	par.For(n, func(i int) { member[i] = isBridgeVtx[i] != rep.SparserFirst })
	// Note: when the bridge side goes first the phase sees every G-edge
	// among bridge endpoints — not only the bridges — or two endpoints
	// joined by a non-bridge edge could both enter the set (the paper's
	// sketch elides this; see DESIGN.md §5).
	sp := trace.Begin("solve/masked")
	st := maskedPhase(g, set, member, solver)
	sp.Add("rounds", int64(st.Rounds))
	sp.End()
	rep.Rounds += st.Rounds
	sp = trace.Begin("solve/remainder")
	st = remainderPhase(g, set, solver)
	sp.Add("rounds", int64(st.Rounds))
	sp.End()
	rep.Rounds += st.Rounds
	rep.Solve = time.Since(start)
	return set, rep
}

// MISRand is the paper's Algorithm 11: random k-way labeling, MIS on
// H = ∪ᵢ Hᵢ (vertices with no cross edge) or on the cross side first —
// whichever is sparser — then on the reduced remainder.
func MISRand(g *graph.Graph, k int, seed uint64, solver Solver) (*IndepSet, Report) {
	return MISRandOrdered(g, k, seed, solver, OrderAuto)
}

// MISRandOrdered is MISRand with an explicit phase order (ablation).
func MISRandOrdered(g *graph.Graph, k int, seed uint64, solver Solver, ord Order) (*IndepSet, Report) {
	rep := Report{Strategy: "MIS-Rand"}
	n := g.NumVertices()

	// Decomposition: the random labels plus the cross-edge classification.
	dsp := trace.Begin("decomp")
	decompStart := time.Now()
	label := make([]int32, n)
	par.For(n, func(i int) {
		label[i] = int32(par.HashRange(seed, int64(i), k))
	})
	hasCross, partEdges := crossClassify(g, label)
	rep.Decomp = time.Since(decompStart)
	dsp.End()

	set := labeledTwoPhase(&rep, g, hasCross, partEdges, solver, ord)
	return set, rep
}

// MISMPX is the MPX analogue of Algorithm 11 (an extension beyond the
// paper): grow exponential-shift balls, then run the two masked phases
// over the ball labels — the vertices with no inter-ball edge and the
// reduced remainder, sparser side first.
func MISMPX(g *graph.Graph, beta float64, seed uint64, solver Solver) (*IndepSet, Report) {
	return MISMPXOrdered(g, beta, seed, solver, OrderAuto)
}

// MISMPXOrdered is MISMPX with an explicit phase order (ablation).
func MISMPXOrdered(g *graph.Graph, beta float64, seed uint64, solver Solver, ord Order) (*IndepSet, Report) {
	rep := Report{Strategy: "MIS-MPX"}

	dsp := trace.Begin("decomp")
	decompStart := time.Now()
	info := decomp.MPXGrow(g, beta, seed)
	hasCross, partEdges := crossClassify(g, info.Center)
	rep.Decomp = time.Since(decompStart)
	dsp.End()

	set := labeledTwoPhase(&rep, g, hasCross, partEdges, solver, ord)
	return set, rep
}

// crossClassify marks, for a per-vertex part labeling, the vertices with
// at least one cross edge, and counts the intra-part edges.
func crossClassify(g *graph.Graph, label []int32) (hasCross []bool, partEdges int64) {
	n := g.NumVertices()
	hasCross = make([]bool, n)
	cnt := par.Sum(n, func(i int) int64 {
		v := int32(i)
		var intra int64
		cross := false
		for _, w := range g.Neighbors(v) {
			if label[w] == label[v] {
				intra++
			} else {
				cross = true
			}
		}
		hasCross[i] = cross
		return intra
	})
	return hasCross, cnt / 2
}

// labeledTwoPhase is the shared solve of the label-based decompositions
// (RAND, MPX): masked phase over the sparser of the no-cross side and the
// cross side, then the reduced remainder.
func labeledTwoPhase(rep *Report, g *graph.Graph, hasCross []bool, partEdges int64, solver Solver, ord Order) *IndepSet {
	n := g.NumVertices()
	start := time.Now()
	set := NewIndepSet(n)
	crossVerts := par.Count(n, func(i int) bool { return hasCross[i] })
	crossEdges := g.NumEdges() - partEdges
	rep.SparserFirst = pickFirst(ord,
		avgDeg(partEdges, int64(n)) <= avgDeg(crossEdges, crossVerts))

	member := make([]bool, n)
	par.For(n, func(i int) { member[i] = hasCross[i] != rep.SparserFirst })
	// As in MISBridge, the cross-first phase is vertex-induced from G so
	// intra-part edges between cross endpoints are respected.
	sp := trace.Begin("solve/masked")
	st := maskedPhase(g, set, member, solver)
	sp.Add("rounds", int64(st.Rounds))
	sp.End()
	rep.Rounds += st.Rounds
	sp = trace.Begin("solve/remainder")
	st = remainderPhase(g, set, solver)
	sp.Add("rounds", int64(st.Rounds))
	sp.End()
	rep.Rounds += st.Rounds
	rep.Solve = time.Since(start)
	return set
}

// MISDeg2 is the paper's Algorithm 12: classify vertices by the degree-2
// threshold, run the special bounded-degree solver (KPSolver, standing in
// for [21]) on the degree ≤ 2 induced subgraph, then the general solver on
// the reduced remainder.
//
// Note: the paper's prose says "an MIS I_C in G_C" but the degree bound it
// invokes ("with its degree bounded by two ... a set of paths") holds for
// G_L, the induced subgraph on degree ≤ 2 vertices — G_C's high-degree
// endpoints can have arbitrarily many cross edges. We follow the intent and
// run the bounded-degree solver on G_L (see DESIGN.md).
func MISDeg2(g *graph.Graph, solver Solver) (*IndepSet, Report) {
	return MISDeg2With(g, solver, KPSolver())
}

// MISDeg2With is MISDeg2 with an explicit bounded-degree solver for the
// G_L phase (GPU runs pass KPSolverOn(machine.Launch) so the phase's work
// is charged to the device).
func MISDeg2With(g *graph.Graph, solver, kp Solver) (*IndepSet, Report) {
	rep := Report{Strategy: "MIS-Deg2"}
	n := g.NumVertices()

	// The decomposition is one classification pass — "a simple
	// computation" per the paper's Figure 2 discussion.
	dsp := trace.Begin("decomp")
	decompStart := time.Now()
	low := make([]bool, n)
	par.For(n, func(i int) { low[i] = g.Degree(int32(i)) <= 2 })
	rep.Decomp = time.Since(decompStart)
	dsp.End()

	start := time.Now()
	set := NewIndepSet(n)
	sp := trace.Begin("solve/G_L")
	st := maskedPhase(g, set, low, kp)
	sp.Add("rounds", int64(st.Rounds))
	sp.End()
	rep.Rounds += st.Rounds
	sp = trace.Begin("solve/remainder")
	st = remainderPhase(g, set, solver)
	sp.Add("rounds", int64(st.Rounds))
	sp.End()
	rep.Rounds += st.Rounds
	rep.Solve = time.Since(start)
	return set, rep
}
