package mis

import (
	"sync/atomic"

	"repro/internal/bsp"
	"repro/internal/frontier"
	"repro/internal/graph"
	"repro/internal/par"
	"repro/internal/trace"
)

// Luby computes a maximal independent set with Luby's classic algorithm
// (the paper's Algorithm LubyMIS, [22]): each round every undecided vertex
// recomputes its residual degree d(v) and marks itself with probability
// 1/(2·d(v)) (degree-0 vertices join outright); for every edge with both
// endpoints marked, the lower-degree endpoint unmarks; survivors join the
// set and their neighbors drop out. At least half the live edges disappear
// per round in expectation, giving O(log n) rounds w.h.p. — but each round
// pays a full sweep with residual-degree recomputation, the cost the
// decomposition-based algorithms avoid on the parts they peel off.
//
// Coin flips are hashes of (seed, round, v), so runs are deterministic
// under a seed for any worker count.
func Luby(g *graph.Graph, seed uint64) (*IndepSet, Stats) {
	return freshRun(g, LubySolver(seed))
}

// LubyGPU is Luby's algorithm with every round's three phases executed as
// kernel launches on the bsp virtual manycore, mirroring the paper's GPU
// baseline.
func LubyGPU(g *graph.Graph, machine *bsp.Machine, seed uint64) (*IndepSet, Stats) {
	return freshRun(g, LubyGPUSolver(machine, seed))
}

// LubySolver returns Luby's algorithm as a masked Solver.
func LubySolver(seed uint64) Solver {
	return func(g *graph.Graph, status []State, set *IndepSet, active []int32) Stats {
		return lubyRun(g, seed, par.For, status, set, active)
	}
}

// LubyGPUSolver returns Luby's algorithm running its per-round phases as
// kernels on machine.
func LubyGPUSolver(machine *bsp.Machine, seed uint64) Solver {
	return func(g *graph.Graph, status []State, set *IndepSet, active []int32) Stats {
		return lubyRun(g, seed, machine.Launch, status, set, active)
	}
}

// GreedySolver returns the random-priority greedy algorithm of Blelloch et
// al. as a masked Solver: one random permutation fixes priorities for the
// whole run; each round the local minima among undecided neighbors join and
// their neighbors leave. The round count equals the dependence depth of the
// greedy sequential algorithm, O(log² n) w.h.p., and no per-round degree
// recomputation is needed.
func GreedySolver(seed uint64) Solver {
	return func(g *graph.Graph, status []State, set *IndepSet, active []int32) Stats {
		return greedyRun(g, seed, status, set, active)
	}
}

// Greedy computes an MIS with GreedySolver over the whole graph.
func Greedy(g *graph.Graph, seed uint64) (*IndepSet, Stats) {
	return freshRun(g, GreedySolver(seed))
}

// lubyRun is the classic Luby loop. As in the standard implementations the
// paper benchmarks against, every round sweeps the full member list with a
// status check rather than compacting an active list; a phase handed a
// small member set therefore sweeps only that set.
//
//lint:hotpath
func lubyRun(g *graph.Graph, seed uint64, exec func(n int, kernel func(i int)),
	status []State, set *IndepSet, members []int32) Stats {

	var st Stats
	n := g.NumVertices()
	deg := make([]int32, n)
	marked := make([]bool, n)
	remaining := int64(len(members))
	var decided atomic.Int64

	for remaining > 0 {
		st.Rounds++
		roundSeed := par.Hash64(seed, int64(st.Rounds))
		// Phase 1: residual degree + coin flip with probability 1/(2d).
		exec(len(members), func(i int) {
			v := members[i]
			if status[v] != StateUndecided {
				return
			}
			var d int32
			for _, w := range g.Neighbors(v) {
				if status[w] == StateUndecided {
					d++
				}
			}
			deg[v] = d
			if d == 0 {
				set.In[v] = true // isolated in the residual graph: join
				marked[v] = false
				return
			}
			// P(mark) = 1/(2d): compare the hash against 2^64/(2d).
			threshold := ^uint64(0) / uint64(2*d)
			marked[v] = par.Hash64(roundSeed, int64(v)) <= threshold
		})
		// Phase 2: resolve marked edges — the lower-degree endpoint
		// unmarks (ties toward the smaller id). Survivors are local maxima
		// of (degree, id) among marked neighbors, hence independent.
		exec(len(members), func(i int) {
			v := members[i]
			if status[v] != StateUndecided || !marked[v] {
				return
			}
			dv := deg[v]
			for _, w := range g.Neighbors(v) {
				if status[w] != StateUndecided || !marked[w] {
					continue
				}
				if deg[w] > dv || (deg[w] == dv && w > v) {
					return // v unmarks: do not join this round
				}
			}
			set.In[v] = true
		})
		// Phase 3: joiners become in, their neighbors out.
		decided.Store(0)
		exec(len(members), func(i int) {
			v := members[i]
			if status[v] != StateUndecided {
				return
			}
			if set.In[v] {
				status[v] = StateIn
				decided.Add(1)
				return
			}
			for _, w := range g.Neighbors(v) {
				if set.In[w] {
					status[v] = StateOut
					decided.Add(1)
					return
				}
			}
		})
		remaining -= decided.Load()
		if trace.Enabled() {
			trace.Append("frontier", remaining)
		}
	}
	return st
}

// greedyRun is the fixed-priority local-minima loop (Blelloch et al.). The
// active set lives in a frontier.Subset; each round vertex-maps the two
// phases over it and compacts with frontier.Filter, so the greedy
// algorithm's work is naturally proportional to the shrinking residual.
func greedyRun(g *graph.Graph, seed uint64, status []State, set *IndepSet, active []int32) Stats {
	var st Stats
	prio := func(v int32) uint64 { return par.Hash64(seed, int64(v)) }
	act := frontier.New(g.NumVertices(), active)
	for !act.IsEmpty() {
		st.Rounds++
		frontier.Map(act, func(v int32) {
			pv := prio(v)
			for _, w := range g.Neighbors(v) {
				if status[w] != StateUndecided {
					continue
				}
				pw := prio(w)
				if pw < pv || (pw == pv && w < v) {
					return // a higher-priority undecided neighbor: wait
				}
			}
			set.In[v] = true
		})
		frontier.Map(act, func(v int32) {
			if set.In[v] {
				status[v] = StateIn
				return
			}
			for _, w := range g.Neighbors(v) {
				if set.In[w] {
					status[v] = StateOut
					return
				}
			}
		})
		act = frontier.Filter(act, func(v int32) bool { return status[v] == StateUndecided })
		if trace.Enabled() {
			trace.Append("frontier", int64(act.Size()))
		}
	}
	return st
}
