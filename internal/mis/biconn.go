package mis

import (
	"time"

	"repro/internal/biconn"
	"repro/internal/graph"
	"repro/internal/par"
)

// MISBiconn is an extension beyond the paper's three decompositions
// (Hochbaum's biconnected-component approach from the related work): an
// MIS of the subgraph induced by non-articulation vertices — the blocks
// minus their cut vertices, which are mutually non-adjacent across blocks
// — followed by the general solver on the reduced remainder.
func MISBiconn(g *graph.Graph, solver Solver) (*IndepSet, Report) {
	rep := Report{Strategy: "MIS-Biconn"}
	decompStart := time.Now()
	bc := biconn.Blocks(g)
	rep.Decomp = time.Since(decompStart)

	start := time.Now()
	n := g.NumVertices()
	set := NewIndepSet(n)
	member := make([]bool, n)
	par.For(n, func(i int) { member[i] = !bc.IsArticulation[i] })
	st := maskedPhase(g, set, member, solver)
	rep.Rounds += st.Rounds
	st = remainderPhase(g, set, solver)
	rep.Rounds += st.Rounds
	rep.Solve = time.Since(start)
	return set, rep
}
