package mis

import (
	"testing"

	"repro/internal/bsp"
	"repro/internal/graph"
	"repro/internal/par"
)

func pathGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n-1; i++ {
		b.AddEdge(int32(i), int32(i+1))
	}
	return b.Build()
}

func cycleGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		b.AddEdge(int32(i), int32((i+1)%n))
	}
	return b.Build()
}

func completeGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			b.AddEdge(int32(i), int32(j))
		}
	}
	return b.Build()
}

func starGraph(n int) *graph.Graph {
	b := graph.NewBuilder(n)
	for i := 1; i < n; i++ {
		b.AddEdge(0, int32(i))
	}
	return b.Build()
}

func randomGraph(n, m int, seed uint64) *graph.Graph {
	r := par.NewRNG(seed)
	b := graph.NewBuilder(n)
	for i := 0; i < m; i++ {
		b.AddEdge(int32(r.Intn(n)), int32(r.Intn(n)))
	}
	return b.Build()
}

func paperGraph() *graph.Graph {
	b := graph.NewBuilder(8)
	b.AddEdge(0, 1)
	b.AddEdge(1, 2)
	b.AddEdge(0, 2)
	b.AddEdge(2, 3)
	b.AddEdge(3, 4)
	b.AddEdge(4, 5)
	b.AddEdge(5, 6)
	b.AddEdge(3, 6)
	b.AddEdge(6, 7)
	return b.Build()
}

func testGraphs() map[string]*graph.Graph {
	return map[string]*graph.Graph{
		"empty":       graph.NewBuilder(0).Build(),
		"isolated":    graph.NewBuilder(10).Build(),
		"path":        pathGraph(101),
		"cycle":       cycleGraph(64),
		"complete":    completeGraph(17),
		"star":        starGraph(33),
		"paper":       paperGraph(),
		"rand-sparse": randomGraph(500, 600, 1),
		"rand-dense":  randomGraph(300, 5000, 2),
	}
}

func TestVerifyCatchesBadSets(t *testing.T) {
	g := pathGraph(4)
	s := NewIndepSet(4)
	s.In = []bool{true, false, true, false}
	if err := Verify(g, s); err != nil {
		t.Fatalf("valid MIS rejected: %v", err)
	}
	// Adjacent members.
	s.In = []bool{true, true, false, true}
	if Verify(g, s) == nil {
		t.Fatal("dependent set accepted")
	}
	// Not maximal: {0} leaves 2,3 uncovered... {0} covers 1 only.
	s.In = []bool{true, false, false, false}
	if Verify(g, s) == nil {
		t.Fatal("non-maximal set accepted")
	}
	// Wrong length.
	if Verify(g, NewIndepSet(3)) == nil {
		t.Fatal("wrong-length set accepted")
	}
}

func TestLubyMaximalOnCorpus(t *testing.T) {
	for name, g := range testGraphs() {
		s, st := Luby(g, 42)
		if err := Verify(g, s); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if g.NumVertices() > 0 && st.Rounds == 0 {
			t.Fatalf("%s: zero rounds on non-empty graph", name)
		}
	}
}

func TestLubyKnownSizes(t *testing.T) {
	// Complete graph: MIS size exactly 1.
	s, _ := Luby(completeGraph(17), 3)
	if s.Size() != 1 {
		t.Fatalf("K17 MIS size %d", s.Size())
	}
	// Isolated vertices: all in.
	s, _ = Luby(graph.NewBuilder(10).Build(), 3)
	if s.Size() != 10 {
		t.Fatalf("isolated MIS size %d", s.Size())
	}
	// Path on n: MIS size between ⌈n/3⌉ and ⌈n/2⌉.
	n := int64(101)
	s, _ = Luby(pathGraph(int(n)), 3)
	if s.Size() < (n+2)/3 || s.Size() > (n+1)/2 {
		t.Fatalf("path MIS size %d outside [%d,%d]", s.Size(), (n+2)/3, (n+1)/2)
	}
}

func TestLubyLogarithmicRounds(t *testing.T) {
	g := randomGraph(20000, 100000, 7)
	_, st := Luby(g, 1)
	if st.Rounds > 40 {
		t.Fatalf("Luby took %d rounds; expected O(log n)", st.Rounds)
	}
}

func TestLubyDeterministicUnderSeed(t *testing.T) {
	g := randomGraph(400, 2000, 5)
	a, _ := Luby(g, 9)
	b, _ := Luby(g, 9)
	for i := range a.In {
		if a.In[i] != b.In[i] {
			t.Fatalf("Luby differs at %d under same seed", i)
		}
	}
}

func TestLubyGPUMatchesCPUSemantics(t *testing.T) {
	g := randomGraph(300, 1200, 11)
	machine := bsp.New()
	sGPU, stGPU := LubyGPU(g, machine, 4)
	sCPU, stCPU := Luby(g, 4)
	// Same seed → identical deterministic outcome on both engines.
	for i := range sGPU.In {
		if sGPU.In[i] != sCPU.In[i] {
			t.Fatalf("GPU and CPU Luby differ at %d", i)
		}
	}
	if stGPU.Rounds != stCPU.Rounds {
		t.Fatal("round counts differ between engines")
	}
	if machine.Stats().Launches != int64(3*stGPU.Rounds) {
		t.Fatalf("launches %d, want 3 per round", machine.Stats().Launches)
	}
}

func TestGreedyMaximalOnCorpus(t *testing.T) {
	for name, g := range testGraphs() {
		s, _ := Greedy(g, 13)
		if err := Verify(g, s); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
}

func TestKPDeg2OnPathsAndCycles(t *testing.T) {
	for _, g := range []*graph.Graph{
		pathGraph(1), pathGraph(2), pathGraph(100), cycleGraph(3),
		cycleGraph(100), cycleGraph(101), graph.NewBuilder(7).Build(),
	} {
		s, _ := KPDeg2(g)
		if err := Verify(g, s); err != nil {
			t.Fatal(err)
		}
	}
	// Union of paths and cycles.
	b := graph.NewBuilder(12)
	for i := 0; i < 4; i++ {
		b.AddEdge(int32(i), int32((i+1)%5)) // cycle piece 0..4
	}
	b.AddEdge(4, 0)
	b.AddEdge(6, 7)
	b.AddEdge(7, 8) // path 6-7-8
	g := b.Build()
	s, _ := KPDeg2(g)
	if err := Verify(g, s); err != nil {
		t.Fatal(err)
	}
}

func TestKPDeg2RejectsHighDegree(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on degree-3 input")
		}
	}()
	KPDeg2(starGraph(5))
}

func TestKPDeg2FewerRoundsThanVainChain(t *testing.T) {
	// Rounds should be logarithmic-ish on a long path, not linear.
	_, st := KPDeg2(pathGraph(100000))
	if st.Rounds > 60 {
		t.Fatalf("KPDeg2 took %d rounds on a 100k-path", st.Rounds)
	}
}

func TestDecomposedMISMaximal(t *testing.T) {
	machine := bsp.New()
	solvers := map[string]Solver{
		"Luby":    LubySolver(21),
		"LubyGPU": LubyGPUSolver(machine, 21),
	}
	for sname, alg := range solvers {
		for gname, g := range testGraphs() {
			runs := []struct {
				name string
				run  func() (*IndepSet, Report)
			}{
				{"MIS-Bridge", func() (*IndepSet, Report) { return MISBridge(g, alg) }},
				{"MIS-Rand", func() (*IndepSet, Report) { return MISRand(g, 4, 3, alg) }},
				{"MIS-Deg2", func() (*IndepSet, Report) { return MISDeg2(g, alg) }},
			}
			for _, r := range runs {
				s, rep := r.run()
				if err := Verify(g, s); err != nil {
					t.Fatalf("%s/%s/%s: %v", r.name, sname, gname, err)
				}
				if rep.Strategy != r.name {
					t.Fatalf("report strategy %q, want %q", rep.Strategy, r.name)
				}
			}
		}
	}
}

func TestMISBridgeOrderHeuristic(t *testing.T) {
	// On a path every edge is a bridge: the bridge graph holds all edges,
	// H is empty (every vertex is a bridge endpoint). H (avg degree 0) runs
	// first.
	g := pathGraph(50)
	_, rep := MISBridge(g, LubySolver(1))
	if !rep.SparserFirst {
		t.Fatal("expected the empty H side to be chosen first on a path")
	}
}

func TestMISDeg2DelegatesLowDegreePart(t *testing.T) {
	// A pure path is entirely degree ≤ 2: the remainder must be empty, so
	// the general solver should receive no active work — everything is
	// decided by the bounded-degree phase.
	work := 0
	inner := LubySolver(1)
	spy := func(g *graph.Graph, status []State, set *IndepSet, active []int32) Stats {
		work += len(active)
		return inner(g, status, set, active)
	}
	g := pathGraph(200)
	s, _ := MISDeg2(g, spy)
	if err := Verify(g, s); err != nil {
		t.Fatal(err)
	}
	if work != 0 {
		t.Fatalf("general solver received %d active vertices on a pure degree-2 graph", work)
	}
}

func TestReportTotalMIS(t *testing.T) {
	g := randomGraph(400, 2000, 8)
	_, rep := MISDeg2(g, LubySolver(2))
	if rep.Total() != rep.Decomp+rep.Solve {
		t.Fatal("Total != Decomp + Solve")
	}
}

func TestSizeEmpty(t *testing.T) {
	if NewIndepSet(4).Size() != 0 {
		t.Fatal("fresh set not empty")
	}
}
