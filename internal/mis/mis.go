// Package mis implements the paper's maximal independent set algorithms
// (Section V): the LubyMIS baseline (Luby 1986) on both the CPU and the bsp
// virtual manycore, the greedy random-priority MIS (Blelloch et al.) as an
// extra baseline, the bounded-degree solver used for the degree ≤ 2
// subgraph (standing in for Kothapalli–Pindiproli's orientation-based
// algorithm [21]; vertex ids induce the orientation, as the paper does),
// and the three decomposition-based algorithms MIS-Bridge, MIS-Rand and
// MIS-Deg2 (Algorithms 10–12).
//
// The decomposition-based algorithms never materialize subgraphs: phases
// run on the original graph through vertex-state masks, matching the
// paper's observation that the DEG2 decomposition "involves a simple
// computation" — its cost is one classification pass, not a graph rebuild.
package mis

import (
	"fmt"
	"time"

	"repro/internal/graph"
	"repro/internal/par"
)

// State is a vertex's position in an MIS computation.
type State int8

const (
	// StateUndecided marks a vertex still in play.
	StateUndecided State = iota
	// StateIn marks a member of the independent set.
	StateIn
	// StateOut marks a vertex excluded from the set — either it has a
	// StateIn neighbor, or the current phase masks it out.
	StateOut
)

// IndepSet is an independent set: In[v] reports membership.
type IndepSet struct {
	In []bool
}

// NewIndepSet returns an empty set over n vertices.
func NewIndepSet(n int) *IndepSet { return &IndepSet{In: make([]bool, n)} }

// Size reports the number of members.
func (s *IndepSet) Size() int64 {
	return par.Count(len(s.In), func(i int) bool { return s.In[i] })
}

// Verify checks that s is an independent set of g and that it is maximal
// (every non-member has a member neighbor).
func Verify(g *graph.Graph, s *IndepSet) error {
	n := g.NumVertices()
	if len(s.In) != n {
		return fmt.Errorf("mis: %d entries for %d vertices", len(s.In), n)
	}
	for v := 0; v < n; v++ {
		if !s.In[v] {
			continue
		}
		for _, w := range g.Neighbors(int32(v)) {
			if s.In[w] {
				return fmt.Errorf("mis: adjacent members %d and %d", v, w)
			}
		}
	}
	for v := 0; v < n; v++ {
		if s.In[v] {
			continue
		}
		covered := false
		for _, w := range g.Neighbors(int32(v)) {
			if s.In[w] {
				covered = true
				break
			}
		}
		if !covered {
			return fmt.Errorf("mis: not maximal, vertex %d has no member neighbor", v)
		}
	}
	return nil
}

// Stats reports work counters for an MIS run.
type Stats struct {
	// Rounds is the number of selection rounds executed.
	Rounds int
}

// Solver is a masked MIS subroutine: it decides every vertex of active
// (whose status entries must be StateUndecided on entry), adding members to
// set and updating status to StateIn/StateOut. Vertices whose status is not
// StateUndecided are invisible — the run behaves as if the graph were
// induced on the undecided vertices. The decomposition-based algorithms
// hand their phases to a Solver exactly as the paper plugs LubyMIS in as
// the inner algorithm.
type Solver func(g *graph.Graph, status []State, set *IndepSet, active []int32) Stats

// freshRun applies a solver to the whole graph.
func freshRun(g *graph.Graph, solver Solver) (*IndepSet, Stats) {
	n := g.NumVertices()
	set := NewIndepSet(n)
	status := make([]State, n)
	active := make([]int32, n)
	par.Iota(active)
	st := solver(g, status, set, active)
	return set, st
}

// Report describes a full decomposition-based run.
type Report struct {
	// Strategy names the algorithm ("MIS-Deg2" etc.).
	Strategy string
	// Decomp is the decomposition wall time (classification, labeling, or
	// bridge finding — no subgraphs are materialized).
	Decomp time.Duration
	// Solve is the wall time of the MIS phases.
	Solve time.Duration
	// Rounds accumulates inner solver rounds across phases.
	Rounds int
	// SparserFirst records whether the order heuristic ran the
	// decomposed subgraph before the remainder (MIS-Bridge / MIS-Rand).
	SparserFirst bool
}

// Total is the end-to-end wall time.
func (r Report) Total() time.Duration { return r.Decomp + r.Solve }
